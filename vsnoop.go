// Package vsnoop is the public API of the virtual-snooping simulator, a
// from-scratch reproduction of "Virtual Snooping: Filtering Snoops in
// Virtualized Multi-cores" (Kim, Kim, Huh — MICRO 2010).
//
// Virtual snooping confines coherence snoops to a VM's *virtual snoop
// domain*: requests to VM-private pages are multicast only to the cores in
// the VM's vCPU map instead of being broadcast to every core. This package
// wraps the full simulation stack — a Token Coherence (MOESI) protocol on
// a 2D-mesh NoC with private L1/L2 caches, a hypervisor model with vCPU
// relocation and content-based page sharing, and calibrated synthetic
// workloads — behind a small configuration surface.
//
// Quick start:
//
//	cfg := vsnoop.DefaultConfig()
//	cfg.Workload = "fft"
//	cfg.Policy = vsnoop.PolicyCounter
//	cfg.MigrationPeriodMs = 5
//	res, err := vsnoop.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("snoops/transaction: %.2f\n", res.SnoopsPerTransaction)
//
// For the paper's experiments (every table and figure), see the
// vsnoop-report command and the internal/exp package; for lower-level
// access (custom protocols, routers, workloads) use the internal packages
// directly from within this module.
package vsnoop

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"

	"vsnoop/internal/core"
	"vsnoop/internal/fault"
	"vsnoop/internal/sim"
	"vsnoop/internal/system"
	"vsnoop/internal/workload"
)

// Policy selects the snoop destination-set policy.
type Policy int

const (
	// PolicyBroadcast is the TokenB baseline (snoop everyone).
	PolicyBroadcast Policy = iota
	// PolicyBase is virtual snooping without vCPU-map cleanup.
	PolicyBase
	// PolicyCounter removes cores via per-VM cache residence counters.
	PolicyCounter
	// PolicyCounterThreshold removes cores speculatively below a
	// threshold, relying on Token Coherence's safe retries.
	PolicyCounterThreshold
	// PolicyCounterFlush removes cores by selectively flushing the VM's
	// remaining blocks below the threshold (the paper's Section IV.B
	// alternative; an extension beyond the evaluated policies).
	PolicyCounterFlush
)

func (p Policy) String() string { return core.Policy(p).String() }

// ContentPolicy selects how content-shared (RO-shared) pages are snooped.
type ContentPolicy int

const (
	// ContentBroadcast snoops every core for content-shared pages.
	ContentBroadcast ContentPolicy = iota
	// ContentMemoryDirect sends content-shared reads to memory only.
	ContentMemoryDirect
	// ContentIntraVM snoops the requesting VM's map plus memory.
	ContentIntraVM
	// ContentFriendVM also snoops the friend VM sharing the most pages.
	ContentFriendVM
)

func (p ContentPolicy) String() string { return core.ContentPolicy(p).String() }

// Config describes one simulation. The zero value is not runnable; start
// from DefaultConfig.
type Config struct {
	// Cores, VMs and VCPUsPerVM shape the machine (Table II defaults:
	// 16 cores, 4 VMs x 4 vCPUs).
	Cores      int
	VMs        int
	VCPUsPerVM int

	// Workload names the application profile every VM runs (see
	// Workloads() for the calibrated set), or set WorkloadPerVM for a
	// heterogeneous mix.
	Workload      string
	WorkloadPerVM []string

	Policy    Policy
	Content   ContentPolicy
	Threshold int // counter-threshold cutoff (default 10)

	// RefsPerVCPU is the per-vCPU reference-stream length; WarmupRefs of
	// them are excluded from statistics.
	RefsPerVCPU int
	WarmupRefs  int

	// MigrationPeriodMs > 0 relocates vCPUs across VMs with that period
	// (the paper's Section V.C methodology); 0 pins VMs ideally.
	MigrationPeriodMs float64
	CyclesPerMs       uint64

	// ContentSharing enables the content-based page-sharing detector.
	ContentSharing bool
	// Hypervisor enables hypervisor/dom0 activity (Figure 1 methodology);
	// the Section V/VI experiments run without it, like Virtual-GEMS.
	Hypervisor bool

	// Fault, if non-nil, runs the simulation under the given deterministic
	// fault plan (message loss, map corruption, migration storms) with
	// online invariant checking and graceful filter degradation enabled.
	// Identical (Config, FaultPlan, Seed) produce bit-identical results.
	Fault *FaultPlan
	// Checks enables invariant checking without a fault plan (observation
	// only: results are identical with and without it).
	Checks bool
	// MaxSteps bounds the simulation's event count; Run returns an error
	// when it is exhausted (0 = unbounded).
	MaxSteps uint64

	// Shards is the number of parallel event-queue shards (0 or 1 =
	// single-shard). Results are bit-identical for every value; only
	// wall-clock time changes. The partition planner cuts the mesh into
	// snoop domains for every configuration — migration, content sharing,
	// hypervisor activity, and arbitrary geometries included — and the
	// engine clamps Shards to the planned domain count. AutoShards
	// resolves a sensible value for the current machine.
	Shards int

	// ForceSerial builds the legacy single-queue engine instead of the
	// partitioned one, whatever Shards says. It exists as the reference
	// baseline for the scaling benchmarks and identity suites; production
	// callers should leave it false.
	ForceSerial bool

	// NoElision forces the fully-barriered windowed synchronization
	// protocol on sharded runs, disabling adaptive free-running and
	// quiet-window barrier elision. Results are bit-identical with and
	// without it; only synchronization telemetry and wall-clock change.
	NoElision bool

	// Mode selects the sharded engine's synchronization engine:
	// "windowed" (fully barriered), "adaptive" (conservative
	// null-message free-run), "timewarp" (optimistic execution with
	// flat-slice checkpoints, rollback, and GVT commit), "auto" (pick
	// per config from the partition planner's horizon estimate), or ""
	// for the historical dispatch. Results are bit-identical for every
	// value — committed timewarp state matches serial execution at every
	// commit point by construction — so, like Shards, Mode is excluded
	// from Hash. "timewarp" on a configuration outside the optimistic
	// engine's checkpoint coverage (directory protocol, RegionScout,
	// fault plans, invariant checks, trace replay) silently falls back
	// to the conservative dispatch.
	Mode string

	Seed uint64
}

// FaultEventKind enumerates scheduled one-shot fault events.
type FaultEventKind int

const (
	// FaultCorruptMap overwrites a VM's vCPU map register at a cycle:
	// Core >= 0 leaves a single stale entry, Core < 0 clears the map.
	FaultCorruptMap FaultEventKind = iota
	// FaultCorruptCounter adds Count (default -1) to a VM's cache residence
	// counter at a core.
	FaultCorruptCounter
	// FaultMigrationStorm performs Count random cross-VM vCPU swaps
	// back-to-back.
	FaultMigrationStorm
)

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	AtCycle uint64 // absolute simulation cycle
	Kind    FaultEventKind
	VM      int
	Core    int
	Count   int
}

// FaultPlan is a seeded, reproducible fault scenario; see internal/fault
// for the full fault-model rationale. Probabilities are percentages.
type FaultPlan struct {
	Seed uint64

	DropPct  float64 // transient requests destroyed / responses bounced home
	DupPct   float64 // transient requests duplicated
	DelayPct float64 // non-persistent messages delayed
	DelayMax int     // max extra delivery cycles (default 200)

	DegradedLinks     int // mesh links with multiplied serialization cost
	LinkDegradeFactor int // the multiplier (default 4)

	Events []FaultEvent
}

// toInternal converts the public plan to the internal representation.
func (p *FaultPlan) toInternal() *fault.Plan {
	if p == nil {
		return nil
	}
	fp := &fault.Plan{
		Seed:              p.Seed,
		DropPct:           p.DropPct,
		DupPct:            p.DupPct,
		DelayPct:          p.DelayPct,
		DelayMax:          p.DelayMax,
		DegradedLinks:     p.DegradedLinks,
		LinkDegradeFactor: p.LinkDegradeFactor,
	}
	for _, ev := range p.Events {
		fp.Events = append(fp.Events, fault.Event{
			At: sim.Cycle(ev.AtCycle), Kind: fault.EventKind(ev.Kind),
			VM: ev.VM, Core: ev.Core, Count: ev.Count,
		})
	}
	return fp
}

// DefaultConfig returns the paper's Table II system running fft with the
// vsnoop-base policy, ideally pinned.
func DefaultConfig() Config {
	return Config{
		Cores: 16, VMs: 4, VCPUsPerVM: 4,
		Workload:    "fft",
		Policy:      PolicyBase,
		Content:     ContentBroadcast,
		Threshold:   10,
		RefsPerVCPU: 20000,
		WarmupRefs:  5000,
		CyclesPerMs: 100_000,
		Seed:        1,
	}
}

// Validate reports whether the configuration is runnable, without running
// it. It applies the same checks Run performs up front (workload names,
// machine geometry, fault-plan bounds), so servers can reject a bad job
// with a useful message before queueing it.
func (cfg Config) Validate() error {
	sc, err := toSystem(cfg)
	if err != nil {
		return err
	}
	return sc.Validate()
}

// Hash returns the canonical content hash of the configuration: the
// lowercase hex SHA-256 of a versioned, field-ordered encoding. Two
// configurations have equal hashes exactly when they specify the same
// simulation, so the hash is a sound memoization key: determinism
// guarantees equal hashes produce bit-identical Results.
//
// Shards, NoElision, and Mode are deliberately excluded — they choose how
// many goroutines execute the run and which synchronization engine drives
// them, all proven bit-identical to serial execution — so a result
// computed at any shard count or engine mode serves requests at every
// other. ForceSerial is included: the legacy engine models cross-domain
// effects without the partitioned pipeline's ownership-transfer latencies,
// so its results are a different simulation, not a different execution
// strategy. Every semantic field (workloads, policies, fault plan, seed,
// step bounds, checks) is included. The encoding is versioned
// ("vsnoop-config-v3"; v3 moved migrated-vCPU event chasing onto the
// per-domain forwarding tables, re-timing multi-hop chases, and v2 moved
// migration, content-sharing, and fault-event configurations onto the
// partitioned cross-shard semantics — older stores must not serve either);
// any future change to the encoded fields must bump it so stale stores are
// never misread.
func (cfg Config) Hash() string {
	h := sha256.New()
	w := func(format string, args ...interface{}) { fmt.Fprintf(h, format, args...) }
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	w("vsnoop-config-v3\n")
	w("cores=%d\nvms=%d\nvcpusPerVM=%d\n", cfg.Cores, cfg.VMs, cfg.VCPUsPerVM)
	w("workload=%q\n", cfg.Workload)
	w("workloadPerVM.len=%d\n", len(cfg.WorkloadPerVM))
	for i, name := range cfg.WorkloadPerVM {
		w("workloadPerVM[%d]=%q\n", i, name)
	}
	w("policy=%d\ncontent=%d\nthreshold=%d\n", cfg.Policy, cfg.Content, cfg.Threshold)
	w("refsPerVCPU=%d\nwarmupRefs=%d\n", cfg.RefsPerVCPU, cfg.WarmupRefs)
	w("migrationPeriodMs=%s\ncyclesPerMs=%d\n", f64(cfg.MigrationPeriodMs), cfg.CyclesPerMs)
	w("contentSharing=%t\nhypervisor=%t\n", cfg.ContentSharing, cfg.Hypervisor)
	w("forceSerial=%t\n", cfg.ForceSerial)
	w("checks=%t\nmaxSteps=%d\nseed=%d\n", cfg.Checks, cfg.MaxSteps, cfg.Seed)
	if p := cfg.Fault; p != nil {
		w("fault.seed=%d\n", p.Seed)
		w("fault.dropPct=%s\nfault.dupPct=%s\nfault.delayPct=%s\n",
			f64(p.DropPct), f64(p.DupPct), f64(p.DelayPct))
		w("fault.delayMax=%d\n", p.DelayMax)
		w("fault.degradedLinks=%d\nfault.linkDegradeFactor=%d\n",
			p.DegradedLinks, p.LinkDegradeFactor)
		w("fault.events.len=%d\n", len(p.Events))
		for i, ev := range p.Events {
			w("fault.events[%d]=%d,%d,%d,%d,%d\n",
				i, ev.AtCycle, ev.Kind, ev.VM, ev.Core, ev.Count)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Result carries the headline metrics of a run. All counters cover the
// post-warmup measured phase.
type Result struct {
	// ExecCycles is the measured-phase execution time in cycles.
	ExecCycles uint64
	// SnoopsPerTransaction is the mean number of cores snooped per
	// coherence transaction (16 = broadcast on the default machine;
	// 4 = the ideal virtual-snooping multicast).
	SnoopsPerTransaction float64
	// TrafficByteHops is total network traffic in byte-hops.
	TrafficByteHops uint64
	// L2Misses and Transactions count coherence activity.
	L2Misses     uint64
	Transactions uint64
	// Retries and Persistent count Token Coherence recovery actions.
	Retries    uint64
	Persistent uint64
	// Relocations counts vCPU migrations during the run.
	Relocations uint64
	// HypervisorMissPct is the Figure 1 metric (0 without Hypervisor).
	HypervisorMissPct float64
	// ContentAccessPct / ContentMissPct are the Table V metrics.
	ContentAccessPct float64
	ContentMissPct   float64

	// Robustness results (all zero without Config.Fault / Config.Checks).
	// Fault counters are whole-run; see FaultPlan for the fault model.
	FaultsDropped       uint64
	FaultsBounced       uint64
	FaultsDuplicated    uint64
	FaultsDelayed       uint64
	BroadcastFallbacks  uint64 // degraded routes served by full broadcast
	CounterAugFallbacks uint64 // degraded routes served by the counter-augmented map
	MapRebuilds         uint64
	InvariantChecks     uint64
	// InvariantViolations is empty when every registered protocol invariant
	// held at every check (the expected outcome under any fault plan).
	InvariantViolations []string

	// EventsFired is the whole-run simulator event count (never
	// warmup-adjusted); with wall-clock time it yields events/second, the
	// engine's throughput metric.
	EventsFired uint64

	// Stats exposes the full low-level statistics record.
	Stats *system.Stats
}

// TotalEventsFired returns the simulator events executed by every run in
// this process so far (including runs driven through internal/exp rather
// than Run). It is monotone and safe to read concurrently with in-flight
// runs: each run adds its count when it finishes.
func TotalEventsFired() uint64 { return system.TotalEventsFired() }

// TotalSyncCounters returns the sharded-engine synchronization telemetry
// summed over every run in this process so far: synchronization windows,
// elided exchange barriers, barrier waits, and the window-width sum in
// cycles (widthSum/windows = mean window width). All zero when every run
// executed serially.
func TotalSyncCounters() (windows, elided, waits, widthSum uint64) {
	return system.TotalSyncStats()
}

// AutoShards resolves the `-shards auto` CLI setting through the graph-cut
// partition planner: min(planned snoop domains, maxProcs) when cfg maps to
// a partitionable system configuration, 1 otherwise. More workers than
// domains cannot help (domain d runs on shard d mod K), so the planner's
// domain count — not a fixed constant — bounds the request. The caller
// supplies maxProcs (typically runtime.GOMAXPROCS(0) read once at program
// entry) so simulation packages stay free of wall-clock and
// machine-environment reads.
func AutoShards(cfg Config, maxProcs int) int {
	sc, err := toSystem(cfg)
	if err != nil {
		return 1
	}
	k := sc.PlannedDomains()
	if maxProcs < k {
		k = maxProcs
	}
	if k < 1 {
		k = 1
	}
	return k
}

// PlannedDomains returns the number of snoop domains the graph-cut
// partition planner computes for cfg — the parallelism ceiling the engine
// can exploit (shard counts above it clamp). 1 means the run executes on
// the serial engine; invalid configurations also report 1.
func PlannedDomains(cfg Config) int {
	sc, err := toSystem(cfg)
	if err != nil {
		return 1
	}
	return sc.PlannedDomains()
}

// PartitionInfo renders the partition planner's cut for cfg: the domain
// grid, per-node domain assignment, cut edges, per-domain cross-shard
// horizons, and whether the run needs synchronized filter state. This is
// the `-dump-partition` CLI view.
func PartitionInfo(cfg Config) (string, error) {
	sc, err := toSystem(cfg)
	if err != nil {
		return "", err
	}
	return sc.PartitionInfo(), nil
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	sc, err := toSystem(cfg)
	if err != nil {
		return nil, err
	}
	return runSystem(sc)
}

// RunCtx executes one simulation under a context: when ctx is canceled or
// its deadline passes, the run — serial or shard-parallel — stops promptly
// and RunCtx returns an error wrapping ctx.Err(). Cancellation is a
// control-plane mechanism: a run that completes before the context fires
// returns a Result bit-identical to Run's, and a canceled run returns no
// partial result. This is the entry point for servers and CLIs that need
// deadlines (vsnoop-serve, -timeout flags).
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if ctx.Done() == nil {
		return Run(cfg) // context.Background(): nothing to watch
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("vsnoop: run not started: %w", err)
	}
	sc, err := toSystem(cfg)
	if err != nil {
		return nil, err
	}
	c := sim.NewCanceler()
	sc.Cancel = c
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			c.Cancel()
		case <-stop:
		}
	}()
	res, err := runSystem(sc)
	var ce *sim.CanceledError
	if errors.As(err, &ce) {
		// Prefer the context's own error (Canceled vs DeadlineExceeded) so
		// callers can errors.Is against it; keep the engine position too.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("vsnoop: %w (%v)", cerr, ce)
		}
	}
	return res, err
}

// runSystem executes a validated internal configuration and packages the
// public Result.
func runSystem(sc system.Config) (*Result, error) {
	m, err := system.New(sc)
	if err != nil {
		return nil, err
	}
	st, err := m.RunChecked()
	if err != nil {
		return nil, err
	}
	return &Result{
		ExecCycles:           st.ExecCycles,
		SnoopsPerTransaction: st.SnoopsPerTransaction(),
		TrafficByteHops:      st.ByteHops,
		L2Misses:             st.L2Misses,
		Transactions:         st.Transactions,
		Retries:              st.Retries,
		Persistent:           st.Persistent,
		Relocations:          st.Relocations,
		HypervisorMissPct:    st.HypervisorMissPct(),
		ContentAccessPct:     st.ContentAccessPct(),
		ContentMissPct:       st.ContentMissPct(),
		FaultsDropped:        st.FaultsDropped,
		FaultsBounced:        st.FaultsBounced,
		FaultsDuplicated:     st.FaultsDuplicated,
		FaultsDelayed:        st.FaultsDelayed,
		BroadcastFallbacks:   st.FallbackBroadcast,
		CounterAugFallbacks:  st.FallbackCounterAug,
		MapRebuilds:          st.MapRebuilds,
		InvariantChecks:      st.InvariantChecks,
		InvariantViolations:  st.InvariantViolations,
		EventsFired:          st.EventsFired,
		Stats:                st,
	}, nil
}

// toSystem maps the public configuration onto the internal one.
func toSystem(cfg Config) (system.Config, error) {
	sc := system.DefaultConfig()
	if cfg.Cores > 0 {
		sc.Cores = cfg.Cores
	}
	if cfg.VMs > 0 {
		sc.VMs = cfg.VMs
	}
	if cfg.VCPUsPerVM > 0 {
		sc.VCPUsPerVM = cfg.VCPUsPerVM
	}
	switch {
	case len(cfg.WorkloadPerVM) > 0:
		sc.Workloads = cfg.WorkloadPerVM
	case cfg.Workload != "":
		sc.Workloads = []string{cfg.Workload}
	default:
		return sc, fmt.Errorf("vsnoop: no workload configured")
	}
	for _, w := range sc.Workloads {
		if _, ok := workload.Get(w); !ok {
			return sc, fmt.Errorf("vsnoop: unknown workload %q (see vsnoop.Workloads())", w)
		}
	}
	sc.Filter = core.Config{
		Policy:    core.Policy(cfg.Policy),
		Content:   core.ContentPolicy(cfg.Content),
		Threshold: cfg.Threshold,
	}
	if cfg.RefsPerVCPU > 0 {
		sc.RefsPerVCPU = cfg.RefsPerVCPU
	}
	sc.WarmupRefs = cfg.WarmupRefs
	sc.MigrationPeriodMs = cfg.MigrationPeriodMs
	if cfg.CyclesPerMs > 0 {
		sc.CyclesPerMs = cfg.CyclesPerMs
	}
	sc.ContentSharing = cfg.ContentSharing
	sc.NoHypervisor = !cfg.Hypervisor
	sc.Fault = cfg.Fault.toInternal()
	sc.Checks = cfg.Checks
	sc.MaxSteps = cfg.MaxSteps
	sc.Shards = cfg.Shards
	sc.ForceSerial = cfg.ForceSerial
	sc.NoElision = cfg.NoElision
	sc.Mode = cfg.Mode
	if cfg.Seed != 0 {
		sc.Seed = cfg.Seed
	}
	return sc, nil
}

// Workloads returns the names of all calibrated application profiles.
func Workloads() []string { return workload.Names() }
