// Command vsnoop-sim runs a single simulation with the given knobs and
// prints the full statistics record — the workhorse for interactive
// exploration of the virtual-snooping design space.
//
// Usage:
//
//	vsnoop-sim -workload fft -policy counter -period 2.5 -refs 40000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vsnoop"
)

func main() {
	workloadFlag := flag.String("workload", "fft", "application profile (comma-separated for per-VM mix); see -list")
	policyFlag := flag.String("policy", "base", "snoop policy: tokenb, base, counter, counter-threshold, counter-flush")
	contentFlag := flag.String("content", "broadcast", "content policy: broadcast, memory-direct, intra-vm, friend-vm")
	refs := flag.Int("refs", 30000, "references per vCPU (measured phase)")
	warmup := flag.Int("warmup", 6000, "warmup references per vCPU (excluded from stats)")
	period := flag.Float64("period", 0, "vCPU migration period in ms (0 = pinned)")
	cyclesPerMs := flag.Uint64("cycles-per-ms", 100000, "cycles per scheduler millisecond")
	vms := flag.Int("vms", 4, "number of VMs")
	vcpus := flag.Int("vcpus", 4, "vCPUs per VM")
	sharing := flag.Bool("content-sharing", false, "enable content-based page sharing")
	hypervisor := flag.Bool("hypervisor", false, "enable hypervisor/dom0 activity")
	threshold := flag.Int("threshold", 10, "counter-threshold cutoff")
	seed := flag.Uint64("seed", 1, "run seed")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range vsnoop.Workloads() {
			fmt.Println(w)
		}
		return
	}

	cfg := vsnoop.DefaultConfig()
	if names := strings.Split(*workloadFlag, ","); len(names) > 1 {
		cfg.WorkloadPerVM = names
		cfg.Workload = ""
	} else {
		cfg.Workload = *workloadFlag
	}
	switch *policyFlag {
	case "tokenb", "broadcast":
		cfg.Policy = vsnoop.PolicyBroadcast
	case "base":
		cfg.Policy = vsnoop.PolicyBase
	case "counter":
		cfg.Policy = vsnoop.PolicyCounter
	case "counter-threshold":
		cfg.Policy = vsnoop.PolicyCounterThreshold
	case "counter-flush":
		cfg.Policy = vsnoop.PolicyCounterFlush
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}
	switch *contentFlag {
	case "broadcast":
		cfg.Content = vsnoop.ContentBroadcast
	case "memory-direct":
		cfg.Content = vsnoop.ContentMemoryDirect
	case "intra-vm":
		cfg.Content = vsnoop.ContentIntraVM
	case "friend-vm":
		cfg.Content = vsnoop.ContentFriendVM
	default:
		fmt.Fprintf(os.Stderr, "unknown content policy %q\n", *contentFlag)
		os.Exit(2)
	}
	cfg.VMs = *vms
	cfg.VCPUsPerVM = *vcpus
	cfg.RefsPerVCPU = *refs
	cfg.WarmupRefs = *warmup
	cfg.MigrationPeriodMs = *period
	cfg.CyclesPerMs = *cyclesPerMs
	cfg.ContentSharing = *sharing
	cfg.Hypervisor = *hypervisor
	cfg.Threshold = *threshold
	cfg.Seed = *seed

	res, err := vsnoop.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := res.Stats

	fmt.Printf("workload=%s policy=%s content=%s period=%.2fms\n",
		*workloadFlag, cfg.Policy, cfg.Content, *period)
	fmt.Printf("%-28s %d\n", "exec cycles", res.ExecCycles)
	fmt.Printf("%-28s %d\n", "L1 accesses", st.L1Accesses)
	fmt.Printf("%-28s %d (%.2f%%)\n", "L2 misses", st.L2Misses,
		100*float64(st.L2Misses)/float64(st.L1Accesses))
	fmt.Printf("%-28s %d\n", "coherence transactions", st.Transactions)
	fmt.Printf("%-28s %.2f\n", "snoops per transaction", res.SnoopsPerTransaction)
	fmt.Printf("%-28s %d\n", "snoop tag lookups", st.SnoopLookups)
	fmt.Printf("%-28s %d\n", "traffic (byte-hops)", res.TrafficByteHops)
	fmt.Printf("%-28s %d / %d\n", "retries / persistent", st.Retries, st.Persistent)
	fmt.Printf("%-28s %d / %d\n", "DRAM reads / writes", st.DRAMReads, st.DRAMWrites)
	fmt.Printf("%-28s %d\n", "writebacks", st.Writebacks)
	fmt.Printf("%-28s %d\n", "vCPU relocations", res.Relocations)
	fmt.Printf("%-28s %d\n", "vCPU map syncs", st.MapSyncs)
	fmt.Printf("%-28s %.1f cycles\n", "avg miss latency", st.MissLatency.Mean())
	if *hypervisor {
		fmt.Printf("%-28s %.2f%%\n", "hypervisor+dom0 miss share", res.HypervisorMissPct)
	}
	if *sharing {
		fmt.Printf("%-28s %.2f%% / %.2f%%\n", "content access/miss share",
			res.ContentAccessPct, res.ContentMissPct)
		fmt.Printf("%-28s %d\n", "copy-on-writes", st.Cows)
	}
}
