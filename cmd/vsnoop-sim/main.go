// Command vsnoop-sim runs a single simulation with the given knobs and
// prints the full statistics record — the workhorse for interactive
// exploration of the virtual-snooping design space.
//
// Usage:
//
//	vsnoop-sim -workload fft -policy counter -period 2.5 -refs 40000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vsnoop"
	"vsnoop/internal/prof"
	"vsnoop/internal/report"
)

func main() {
	maxProcs := runtime.GOMAXPROCS(0) //lint:wallclock CLI entry reads host parallelism once; it only seeds the -shards/-workers defaults, never sim state
	var profiles prof.Flags
	profiles.AddFlags(nil)
	workloadFlag := flag.String("workload", "fft", "application profile (comma-separated for per-VM mix); see -list")
	policyFlag := flag.String("policy", "base", "snoop policy: tokenb, base, counter, counter-threshold, counter-flush")
	contentFlag := flag.String("content", "broadcast", "content policy: broadcast, memory-direct, intra-vm, friend-vm")
	refs := flag.Int("refs", 30000, "references per vCPU (measured phase)")
	warmup := flag.Int("warmup", 6000, "warmup references per vCPU (excluded from stats)")
	period := flag.Float64("period", 0, "vCPU migration period in ms (0 = pinned)")
	cyclesPerMs := flag.Uint64("cycles-per-ms", 100000, "cycles per scheduler millisecond")
	vms := flag.Int("vms", 4, "number of VMs")
	vcpus := flag.Int("vcpus", 4, "vCPUs per VM")
	sharing := flag.Bool("content-sharing", false, "enable content-based page sharing")
	hypervisor := flag.Bool("hypervisor", false, "enable hypervisor/dom0 activity")
	threshold := flag.Int("threshold", 10, "counter-threshold cutoff")
	seed := flag.Uint64("seed", 1, "run seed")
	list := flag.Bool("list", false, "list workloads and exit")
	check := flag.Bool("check", false, "enable online coherence invariant checking")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for the run (0 = none); a timed-out run exits nonzero")
	shardsFlag := flag.String("shards", "0", `parallel event-queue shards: a count, or "auto" for min(planned snoop domains, GOMAXPROCS) (0 or 1 = serial; results are bit-identical)`)
	modeFlag := flag.String("mode", "", `sharded synchronization engine: windowed, adaptive, timewarp (optimistic checkpoint/rollback), or auto (planner's horizon estimate picks); "" keeps the historical dispatch — results are bit-identical across modes`)
	dumpPartition := flag.Bool("dump-partition", false, "print the planner's snoop-domain cut (domain grid, cut edges, horizons) and exit")
	noElision := flag.Bool("no-elision", false, "force fully-barriered window synchronization (disable adaptive free-running and barrier elision)")
	maxSteps := flag.Uint64("max-steps", 0, "abort after this many simulation events (0 = unbounded)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault plan seed (mixed with -seed)")
	faultDrop := flag.Float64("fault-drop", 0, "percent of transient requests destroyed (responses bounced home)")
	faultDup := flag.Float64("fault-dup", 0, "percent of transient requests duplicated")
	faultDelay := flag.Float64("fault-delay", 0, "percent of non-persistent messages delayed")
	faultDelayMax := flag.Int("fault-delay-max", 0, "max extra delivery cycles for delayed messages (default 200)")
	faultLinks := flag.Int("fault-links", 0, "number of degraded (slow) mesh links")
	faultLinkFactor := flag.Int("fault-link-factor", 0, "serialization multiplier on degraded links (default 4)")
	faultCorruptMap := flag.String("fault-corrupt-map", "", `corrupt a vCPU map register: "cycle,vm,core" (core -1 clears the map)`)
	faultCorruptCtr := flag.String("fault-corrupt-counter", "", `corrupt a residence counter: "cycle,vm,core,delta"`)
	faultStorm := flag.String("fault-storm", "", `migration storm: "cycle,swaps"`)
	flag.Parse()

	if *list {
		for _, w := range vsnoop.Workloads() {
			fmt.Println(w)
		}
		return
	}

	cfg := vsnoop.DefaultConfig()
	if names := strings.Split(*workloadFlag, ","); len(names) > 1 {
		cfg.WorkloadPerVM = names
		cfg.Workload = ""
	} else {
		cfg.Workload = *workloadFlag
	}
	switch *policyFlag {
	case "tokenb", "broadcast":
		cfg.Policy = vsnoop.PolicyBroadcast
	case "base":
		cfg.Policy = vsnoop.PolicyBase
	case "counter":
		cfg.Policy = vsnoop.PolicyCounter
	case "counter-threshold":
		cfg.Policy = vsnoop.PolicyCounterThreshold
	case "counter-flush":
		cfg.Policy = vsnoop.PolicyCounterFlush
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}
	switch *contentFlag {
	case "broadcast":
		cfg.Content = vsnoop.ContentBroadcast
	case "memory-direct":
		cfg.Content = vsnoop.ContentMemoryDirect
	case "intra-vm":
		cfg.Content = vsnoop.ContentIntraVM
	case "friend-vm":
		cfg.Content = vsnoop.ContentFriendVM
	default:
		fmt.Fprintf(os.Stderr, "unknown content policy %q\n", *contentFlag)
		os.Exit(2)
	}
	cfg.VMs = *vms
	cfg.VCPUsPerVM = *vcpus
	cfg.RefsPerVCPU = *refs
	cfg.WarmupRefs = *warmup
	cfg.MigrationPeriodMs = *period
	cfg.CyclesPerMs = *cyclesPerMs
	cfg.ContentSharing = *sharing
	cfg.Hypervisor = *hypervisor
	cfg.Threshold = *threshold
	cfg.Seed = *seed
	cfg.Checks = *check
	cfg.NoElision = *noElision
	cfg.MaxSteps = *maxSteps

	plan := &vsnoop.FaultPlan{
		Seed:              *faultSeed,
		DropPct:           *faultDrop,
		DupPct:            *faultDup,
		DelayPct:          *faultDelay,
		DelayMax:          *faultDelayMax,
		DegradedLinks:     *faultLinks,
		LinkDegradeFactor: *faultLinkFactor,
	}
	if *faultCorruptMap != "" {
		v := parseEvent("fault-corrupt-map", *faultCorruptMap, 3)
		plan.Events = append(plan.Events, vsnoop.FaultEvent{
			AtCycle: uint64(v[0]), Kind: vsnoop.FaultCorruptMap, VM: int(v[1]), Core: int(v[2]),
		})
	}
	if *faultCorruptCtr != "" {
		v := parseEvent("fault-corrupt-counter", *faultCorruptCtr, 4)
		plan.Events = append(plan.Events, vsnoop.FaultEvent{
			AtCycle: uint64(v[0]), Kind: vsnoop.FaultCorruptCounter,
			VM: int(v[1]), Core: int(v[2]), Count: int(v[3]),
		})
	}
	if *faultStorm != "" {
		v := parseEvent("fault-storm", *faultStorm, 2)
		plan.Events = append(plan.Events, vsnoop.FaultEvent{
			AtCycle: uint64(v[0]), Kind: vsnoop.FaultMigrationStorm, Count: int(v[1]),
		})
	}
	faultActive := plan.DropPct > 0 || plan.DupPct > 0 || plan.DelayPct > 0 ||
		plan.DegradedLinks > 0 || len(plan.Events) > 0
	if faultActive {
		cfg.Fault = plan
	}
	// Resolved after the whole config is built ("auto" asks the partition
	// planner); maxProcs was read once at program entry so the simulation
	// packages stay free of machine-environment reads.
	cfg.Shards = resolveShards(*shardsFlag, cfg, maxProcs)
	switch *modeFlag {
	case "", "auto", "windowed", "adaptive", "timewarp":
		cfg.Mode = *modeFlag
	default:
		fmt.Fprintf(os.Stderr, "-mode: want windowed, adaptive, timewarp, or auto, got %q\n", *modeFlag)
		os.Exit(2)
	}

	if *dumpPartition {
		info, err := vsnoop.PartitionInfo(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(info)
		return
	}

	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now() //lint:wallclock wall-time progress metric printed to stderr; results carry only sim-clock figures
	res, err := vsnoop.RunCtx(ctx, cfg)
	wall := time.Since(start) //lint:wallclock wall-time progress metric printed to stderr; results carry only sim-clock figures
	profiles.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := res.Stats

	fmt.Printf("workload=%s policy=%s content=%s period=%.2fms\n",
		*workloadFlag, cfg.Policy, cfg.Content, *period)
	fmt.Printf("%-28s %d\n", "exec cycles", res.ExecCycles)
	fmt.Printf("%-28s %d\n", "L1 accesses", st.L1Accesses)
	fmt.Printf("%-28s %d (%.2f%%)\n", "L2 misses", st.L2Misses,
		100*float64(st.L2Misses)/float64(st.L1Accesses))
	fmt.Printf("%-28s %d\n", "coherence transactions", st.Transactions)
	fmt.Printf("%-28s %.2f\n", "snoops per transaction", res.SnoopsPerTransaction)
	fmt.Printf("%-28s %d\n", "snoop tag lookups", st.SnoopLookups)
	fmt.Printf("%-28s %d\n", "traffic (byte-hops)", res.TrafficByteHops)
	fmt.Printf("%-28s %d / %d\n", "retries / persistent", st.Retries, st.Persistent)
	fmt.Printf("%-28s %d / %d\n", "DRAM reads / writes", st.DRAMReads, st.DRAMWrites)
	fmt.Printf("%-28s %d\n", "writebacks", st.Writebacks)
	fmt.Printf("%-28s %d\n", "vCPU relocations", res.Relocations)
	fmt.Printf("%-28s %d\n", "vCPU map syncs", st.MapSyncs)
	fmt.Printf("%-28s %.1f cycles\n", "avg miss latency", st.MissLatency.Mean())
	if *hypervisor {
		fmt.Printf("%-28s %.2f%%\n", "hypervisor+dom0 miss share", res.HypervisorMissPct)
	}
	if *sharing {
		fmt.Printf("%-28s %.2f%% / %.2f%%\n", "content access/miss share",
			res.ContentAccessPct, res.ContentMissPct)
		fmt.Printf("%-28s %d\n", "copy-on-writes", st.Cows)
	}
	if cfg.Fault != nil || cfg.Checks {
		report.Robustness(os.Stdout, st)
	}
	fmt.Printf("\n%d events in %s (%.0f events/sec, shards=%d)\n",
		res.EventsFired, wall.Round(time.Millisecond),
		float64(res.EventsFired)/wall.Seconds(), cfg.Shards)
	if sy := st.Sync; sy.Windows > 0 {
		fmt.Printf("sync: %d windows, %d barriers elided, mean window %.0f cycles (domains=%d, shards=%d)\n",
			sy.Windows, sy.ElidedBarriers, sy.MeanWindowWidth(),
			vsnoop.PlannedDomains(cfg), cfg.Shards)
		if sy.Rollbacks > 0 || sy.AntiMessages > 0 || sy.Bailouts > 0 {
			fmt.Printf("timewarp: %d rollbacks, %d anti-messages, mean GVT lag %.0f cycles, %d bailouts\n",
				sy.Rollbacks, sy.AntiMessages, sy.MeanGVTLag(), sy.Bailouts)
		}
	}
}

// resolveShards parses the -shards flag: "auto" resolves against the fully
// built configuration through the partition planner (min of the planned
// snoop-domain count and GOMAXPROCS), anything else must be a non-negative
// integer.
func resolveShards(s string, cfg vsnoop.Config, maxProcs int) int {
	if s == "auto" {
		return vsnoop.AutoShards(cfg, maxProcs)
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 0 {
		fmt.Fprintf(os.Stderr, "-shards: want a non-negative integer or \"auto\", got %q\n", s)
		os.Exit(2)
	}
	return k
}

// parseEvent parses an n-field comma-separated integer flag value.
func parseEvent(name, s string, n int) []int64 {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		fmt.Fprintf(os.Stderr, "-%s: want %d comma-separated integers, got %q\n", name, n, s)
		os.Exit(2)
	}
	out := make([]int64, n)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-%s: bad field %q: %v\n", name, p, err)
			os.Exit(2)
		}
		out[i] = v
	}
	return out
}
