// Command vsnoop-sweep runs a parameter sweep over migration periods and
// snoop policies for a set of workloads and emits CSV, for plotting or
// regression tracking.
//
// Usage:
//
//	vsnoop-sweep -workloads fft,ocean -periods 5,2.5,0.5,0.1 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vsnoop"
)

func main() {
	workloads := flag.String("workloads", "fft,ocean,radix", "comma-separated workloads")
	periods := flag.String("periods", "0,5,2.5,0.5,0.1", "comma-separated migration periods (ms; 0 = pinned)")
	refs := flag.Int("refs", 25000, "references per vCPU (measured)")
	warmup := flag.Int("warmup", 3000, "warmup references per vCPU")
	cyclesPerMs := flag.Uint64("cycles-per-ms", 12000, "cycles per scheduler millisecond")
	flag.Parse()

	var ps []float64
	for _, s := range strings.Split(*periods, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad period %q: %v\n", s, err)
			os.Exit(2)
		}
		ps = append(ps, v)
	}
	pols := []vsnoop.Policy{
		vsnoop.PolicyBroadcast, vsnoop.PolicyBase,
		vsnoop.PolicyCounter, vsnoop.PolicyCounterThreshold,
	}

	fmt.Println("workload,period_ms,policy,snoops_per_txn,traffic_byte_hops,exec_cycles,relocations,retries,persistent")
	for _, app := range strings.Split(*workloads, ",") {
		app = strings.TrimSpace(app)
		for _, period := range ps {
			for _, pol := range pols {
				cfg := vsnoop.DefaultConfig()
				cfg.Workload = app
				cfg.Policy = pol
				cfg.RefsPerVCPU = *refs
				cfg.WarmupRefs = *warmup
				cfg.MigrationPeriodMs = period
				cfg.CyclesPerMs = *cyclesPerMs
				res, err := vsnoop.Run(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("%s,%g,%s,%.3f,%d,%d,%d,%d,%d\n",
					app, period, pol, res.SnoopsPerTransaction,
					res.TrafficByteHops, res.ExecCycles,
					res.Relocations, res.Retries, res.Persistent)
			}
		}
	}
}
