// Command vsnoop-sweep runs a parameter sweep over migration periods and
// snoop policies for a set of workloads and emits CSV, for plotting or
// regression tracking.
//
// Configurations run in parallel on a bounded worker pool (-workers, default
// GOMAXPROCS), but rows stream to stdout in the stable serial order
// (workload, period, policy) as soon as each prefix of the sweep completes,
// so parallel output is byte-identical to -workers=1. A failing
// configuration aborts the sweep with a non-zero exit identifying it.
//
// SIGINT (or an exhausted -timeout) stops the sweep gracefully: rows
// already completed are flushed — the emitted CSV is always the exact
// prefix a serial sweep would have produced — and the process exits 1
// after reporting how far it got.
//
// Usage:
//
//	vsnoop-sweep -workloads fft,ocean -periods 5,2.5,0.5,0.1 -workers 8 > sweep.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"vsnoop"
	"vsnoop/internal/prof"
	"vsnoop/internal/runner"
)

// job is one sweep configuration, carrying its identity for row output and
// error reporting.
type job struct {
	workload string
	period   float64
	policy   vsnoop.Policy
	cfg      vsnoop.Config
}

// outcome is one configuration's result or failure.
type outcome struct {
	res *vsnoop.Result
	err error
}

func main() {
	workloads := flag.String("workloads", "fft,ocean,radix", "comma-separated workloads")
	periods := flag.String("periods", "0,5,2.5,0.5,0.1", "comma-separated migration periods (ms; 0 = pinned)")
	refs := flag.Int("refs", 25000, "references per vCPU (measured)")
	warmup := flag.Int("warmup", 3000, "warmup references per vCPU")
	cyclesPerMs := flag.Uint64("cycles-per-ms", 12000, "cycles per scheduler millisecond")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for the whole sweep (0 = none); completed rows are flushed on expiry")
	var profiles prof.Flags
	profiles.AddFlags(nil)
	flag.Parse()

	var ps []float64
	for _, s := range strings.Split(*periods, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad period %q: %v\n", s, err)
			os.Exit(2)
		}
		ps = append(ps, v)
	}
	pols := []vsnoop.Policy{
		vsnoop.PolicyBroadcast, vsnoop.PolicyBase,
		vsnoop.PolicyCounter, vsnoop.PolicyCounterThreshold,
	}

	// Build the job list in the stable output order: workload-major, then
	// period, then policy. Stream emits rows in exactly this order.
	var jobs []job
	for _, app := range strings.Split(*workloads, ",") {
		app = strings.TrimSpace(app)
		for _, period := range ps {
			for _, pol := range pols {
				cfg := vsnoop.DefaultConfig()
				cfg.Workload = app
				cfg.Policy = pol
				cfg.RefsPerVCPU = *refs
				cfg.WarmupRefs = *warmup
				cfg.MigrationPeriodMs = period
				cfg.CyclesPerMs = *cyclesPerMs
				jobs = append(jobs, job{workload: app, period: period, policy: pol, cfg: cfg})
			}
		}
	}

	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM and -timeout share one context: either stops new
	// dispatches, cancels in-flight runs, and flushes the completed prefix.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Println("workload,period_ms,policy,snoops_per_txn,traffic_byte_hops,exec_cycles,relocations,retries,persistent")
	var failed *job
	var failure error
	rows := 0
	interrupted := runner.StreamCtx(ctx, *workers, len(jobs), func(i int) outcome {
		res, err := vsnoop.RunCtx(ctx, jobs[i].cfg)
		return outcome{res: res, err: err}
	}, func(i int, o outcome) {
		if failure != nil {
			return // already failing: suppress rows after the first error
		}
		if o.err != nil {
			if ctx.Err() != nil {
				return // canceled run, not a simulation failure
			}
			failed, failure = &jobs[i], o.err
			return
		}
		j, res := jobs[i], o.res
		fmt.Printf("%s,%g,%s,%.3f,%d,%d,%d,%d,%d\n",
			j.workload, j.period, j.policy, res.SnoopsPerTransaction,
			res.TrafficByteHops, res.ExecCycles,
			res.Relocations, res.Retries, res.Persistent)
		rows++
	})
	profiles.Stop()

	if failure != nil {
		fmt.Fprintf(os.Stderr, "vsnoop-sweep: workload=%s period=%gms policy=%s: %v\n",
			failed.workload, failed.period, failed.policy, failure)
		os.Exit(1)
	}
	if interrupted != nil {
		fmt.Fprintf(os.Stderr, "vsnoop-sweep: %v: interrupted after %d of %d rows\n",
			interrupted, rows, len(jobs))
		os.Exit(1)
	}
}
