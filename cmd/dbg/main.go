package main

import (
	"fmt"

	"vsnoop/internal/core"
	"vsnoop/internal/system"
	"vsnoop/internal/workload"
)

func main() {
	for _, app := range []string{"lu", "fft", "specjbb"} {
		cfg := system.DefaultConfig()
		cfg.Workloads = []string{app}
		cfg.RefsPerVCPU = 11000
		cfg.WarmupRefs = 6000
		cfg.NoHypervisor = true
		cfg.ContentSharing = true
		cfg.Filter.Policy = core.PolicyBase
		m, err := system.New(cfg)
		if err != nil {
			panic(err)
		}
		prof := workload.MustGet(app)
		l := workload.NewLayout(prof, 4)
		_, contentHi := l.ContentRange()
		hotHi := contentHi + 4*prof.HotPages
		sharedHi := hotHi + prof.SharedPages
		buckets := map[string]int{}
		m.DebugMissHook = func(vmPage int, write bool) {
			var region string
			switch {
			case vmPage < contentHi:
				region = "content"
			case vmPage < hotHi:
				region = "hot"
			case vmPage < sharedHi:
				region = "shared"
			default:
				region = "cold"
			}
			if write {
				region += "+W"
			}
			buckets[region]++
		}
		st := m.Run()
		fmt.Printf("%-8s misses=%d missrate=%.3f buckets=%v\n", app, st.L2Misses,
			float64(st.L2Misses)/float64(st.L1Accesses), buckets)
	}
}
