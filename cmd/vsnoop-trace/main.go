// Command vsnoop-trace captures, inspects, and replays memory-reference
// traces — the trace-driven workflow of the paper's Virtual-GEMS
// methodology.
//
// Usage:
//
//	vsnoop-trace capture -workload fft -refs 50000 -out fft.trc
//	vsnoop-trace info -in fft.trc
//	vsnoop-trace replay -in fft.trc -policy counter -period 2.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vsnoop/internal/core"
	"vsnoop/internal/system"
	"vsnoop/internal/trace"
	"vsnoop/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vsnoop-trace capture|info|replay [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	app := fs.String("workload", "fft", "application profile")
	refs := fs.Int("refs", 50000, "references per vCPU")
	vcpus := fs.Int("vcpus", 16, "vCPU sections (VMs x vCPUs, VM-major)")
	perVM := fs.Int("vcpus-per-vm", 4, "vCPUs per VM (thread index wraps)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("capture: -out is required"))
	}
	prof, ok := workload.Get(*app)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *app))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	if err := w.Begin(*vcpus); err != nil {
		fatal(err)
	}
	for i := 0; i < *vcpus; i++ {
		vm, thread := i / *perVM, i%*perVM
		g := workload.NewGenerator(prof, *perVM, thread, *seed+uint64(vm)*1000)
		if err := trace.Capture(w, g, *refs); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %s: %d sections x %d refs, %d bytes\n", *out, *vcpus, *refs, st.Size())
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("info: -in is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d vCPU sections\n", *in, r.VCPUs())
	for s := 0; s < r.VCPUs(); s++ {
		n, err := r.NextSection()
		if err != nil {
			fatal(err)
		}
		var reads, writes, xen, dom0 int
		for i := 0; i < n; i++ {
			ref, err := r.Read()
			if err != nil {
				fatal(err)
			}
			switch {
			case ref.Ctx == workload.CtxXen:
				xen++
			case ref.Ctx == workload.CtxDom0:
				dom0++
			case ref.Write:
				writes++
			default:
				reads++
			}
		}
		fmt.Printf("  section %2d: %8d refs (%d reads, %d writes, %d xen, %d dom0)\n",
			s, n, reads, writes, xen, dom0)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	app := fs.String("workload", "fft", "profile used for the address-space layout")
	policyFlag := fs.String("policy", "base", "tokenb, base, counter, counter-threshold, counter-flush")
	refs := fs.Int("refs", 0, "references per vCPU (0 = section length)")
	warmup := fs.Int("warmup", 0, "warmup references excluded from stats")
	period := fs.Float64("period", 0, "migration period ms (0 = pinned)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("replay: -in is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}

	cfg := system.DefaultConfig()
	cfg.Workloads = []string{*app}
	cfg.NoHypervisor = false
	cfg.MigrationPeriodMs = *period
	cfg.WarmupRefs = *warmup
	switch *policyFlag {
	case "tokenb":
		cfg.Filter.Policy = core.PolicyBroadcast
	case "base":
		cfg.Filter.Policy = core.PolicyBase
	case "counter":
		cfg.Filter.Policy = core.PolicyCounter
	case "counter-threshold":
		cfg.Filter.Policy = core.PolicyCounterThreshold
	case "counter-flush":
		cfg.Filter.Policy = core.PolicyCounterFlush
	default:
		fatal(fmt.Errorf("unknown policy %q", *policyFlag))
	}

	var sources []system.RefSource
	sectionLen := 0
	for s := 0; s < r.VCPUs(); s++ {
		rp, err := trace.NewReplayer(r)
		if err != nil {
			if err == io.EOF {
				break
			}
			fatal(err)
		}
		sectionLen = rp.Len()
		sources = append(sources, rp)
	}
	if len(sources) != cfg.VMs*cfg.VCPUsPerVM {
		fatal(fmt.Errorf("trace has %d sections, machine needs %d", len(sources), cfg.VMs*cfg.VCPUsPerVM))
	}
	if *refs > 0 {
		cfg.RefsPerVCPU = *refs
	} else {
		cfg.RefsPerVCPU = sectionLen
	}

	m, err := system.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := m.ReplaceSources(sources); err != nil {
		fatal(err)
	}
	st := m.Run()
	fmt.Printf("replayed %d refs/vCPU under policy=%v\n", cfg.RefsPerVCPU, cfg.Filter.Policy)
	fmt.Printf("%-26s %d\n", "exec cycles", st.ExecCycles)
	fmt.Printf("%-26s %.2f\n", "snoops per transaction", st.SnoopsPerTransaction())
	fmt.Printf("%-26s %d\n", "traffic (byte-hops)", st.ByteHops)
	fmt.Printf("%-26s %d\n", "L2 misses", st.L2Misses)
	fmt.Printf("%-26s %d\n", "relocations", st.Relocations)
}
