// Command vsnoop-lint runs the determinism and hot-path static-analysis
// suite over the module. Usage:
//
//	vsnoop-lint [flags] [patterns]
//
//	vsnoop-lint ./...                     # whole module (the CI invocation)
//	vsnoop-lint ./internal/mesh           # report findings in one package
//	vsnoop-lint -json ./...               # machine-readable findings
//	vsnoop-lint -disable shardsafe ./...  # skip one analyzer
//	vsnoop-lint -enable maprange ./...    # run exactly one analyzer
//
// The analysis itself is always whole-module (the shardsafe call-graph walk
// needs every package); patterns only filter which packages findings are
// reported for. Exit codes: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vsnoop/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vsnoop-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vsnoop-lint [-json] [-enable a,b] [-disable a,b] [patterns]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s (waive: //lint:%s <reason>)\n", a.Name, a.Doc, a.WaiverKey)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "vsnoop-lint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "vsnoop-lint:", err)
		return 2
	}

	opts := lint.Options{
		Enabled:  nameSet(*enable),
		Disabled: nameSet(*disable),
	}
	if bad := unknownAnalyzers(opts); bad != "" {
		fmt.Fprintf(stderr, "vsnoop-lint: unknown analyzer %q (use -list)\n", bad)
		return 2
	}
	sel, err := selector(mod, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "vsnoop-lint:", err)
		return 2
	}
	opts.Selected = sel

	findings := lint.Run(mod, opts)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "vsnoop-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(stderr, "vsnoop-lint: %d finding(s)\n", n)
		}
	}
	return lint.ExitCode(findings)
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod, mirroring the go tool.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in or above the working directory")
		}
		dir = parent
	}
}

func nameSet(csv string) map[string]bool {
	if csv == "" {
		return nil
	}
	set := make(map[string]bool)
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			set[n] = true
		}
	}
	return set
}

func unknownAnalyzers(opts lint.Options) string {
	known := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		known[a.Name] = true
	}
	for _, set := range []map[string]bool{opts.Enabled, opts.Disabled} {
		for n := range set {
			if !known[n] {
				return n
			}
		}
	}
	return ""
}

// selector converts go-tool-style patterns into a package predicate.
// Patterns are module-root-relative: "./..." (or no patterns, or "...")
// selects everything; "./x/..." selects a subtree; "./x" one package.
func selector(mod *lint.Module, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return nil, nil // everything
	}
	type rule struct {
		path string
		tree bool
	}
	var rules []rule
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		tree := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, tree = rest, true
		} else if p == "..." {
			p, tree = ".", true
		}
		p = strings.TrimPrefix(p, "./")
		ip := mod.Path
		if p != "" && p != "." {
			if strings.HasPrefix(p, mod.Path) {
				ip = p
			} else {
				ip = mod.Path + "/" + p
			}
		}
		if !tree && mod.Lookup(ip) == nil {
			return nil, fmt.Errorf("pattern %q matches no loaded package", p)
		}
		rules = append(rules, rule{ip, tree})
	}
	return func(pkgPath string) bool {
		for _, r := range rules {
			if pkgPath == r.path || (r.tree && strings.HasPrefix(pkgPath, r.path+"/")) {
				return true
			}
			if r.tree && pkgPath == r.path {
				return true
			}
		}
		return false
	}, nil
}
