// Command vsnoop-report regenerates the paper's tables and figures and
// prints them with the paper's published values alongside.
//
// Usage:
//
//	vsnoop-report [-scale quick|full] [-exp all|fig1|fig2|fig3|table1|table4|fig6|fig78|fig9|table5|fig10|table6]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vsnoop"
	"vsnoop/internal/exp"
	"vsnoop/internal/report"
)

func main() {
	maxProcs := runtime.GOMAXPROCS(0) //lint:wallclock CLI entry reads host parallelism once; it only seeds the shards=auto default, never sim state
	scaleFlag := flag.String("scale", "quick", "run scale: quick or full")
	expFlag := flag.String("exp", "all", "experiment to run (comma-separated): all, fig1, fig2, fig3, table1, table4, fig6, fig78, fig9, table5, fig10, table6, ablations, energy, comparison")
	maxSteps := flag.Uint64("max-steps", 0, "abort any single run after this many simulation events (0 = unbounded)")
	shardsFlag := flag.String("shards", "0", `parallel event-queue shards per run: a count, or "auto" for min(planned snoop domains, GOMAXPROCS) (0 or 1 = serial; results are bit-identical)`)
	modeFlag := flag.String("mode", "", `sharded synchronization engine per run: windowed, adaptive, timewarp, or auto; "" keeps the historical dispatch — results are bit-identical across modes`)
	flag.Parse()
	exp.MaxSteps = *maxSteps
	switch *modeFlag {
	case "", "auto", "windowed", "adaptive", "timewarp":
		exp.Mode = *modeFlag
	default:
		fmt.Fprintf(os.Stderr, "-mode: want windowed, adaptive, timewarp, or auto, got %q\n", *modeFlag)
		os.Exit(2)
	}
	switch *shardsFlag {
	case "auto":
		// Every experiment runs the paper's 4x4 mesh, so the default
		// config's planner answer is the right machine-wide ceiling; each
		// individual run still clamps to its own planned domain count
		// inside the engine.
		exp.Shards = vsnoop.AutoShards(vsnoop.DefaultConfig(), maxProcs)
	default:
		k, err := strconv.Atoi(*shardsFlag)
		if err != nil || k < 0 {
			fmt.Fprintf(os.Stderr, "-shards: want a non-negative integer or \"auto\", got %q\n", *shardsFlag)
			os.Exit(2)
		}
		exp.Shards = k
	}

	var sc exp.Scale
	switch *scaleFlag {
	case "quick":
		sc = exp.Quick
	case "full":
		sc = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(names ...string) bool {
		if want["all"] {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	w := os.Stdout
	start := time.Now() //lint:wallclock wall-time trailer on stdout after all tables; golden comparisons stop before it
	fmt.Fprintf(w, "virtual snooping reproduction — scale=%s\n", sc.Name)

	if sel("fig1") {
		report.Figure1(w, exp.Figure1(sc))
	}
	if sel("fig2") {
		report.Figure2(w, exp.Figure2())
	}
	if sel("fig3", "table1") {
		f3, t1 := exp.Figure3Table1(sc)
		if sel("fig3") {
			report.Figure3(w, f3)
		}
		if sel("table1") {
			report.Table1(w, t1)
		}
	}
	if sel("table4", "fig6") {
		report.Table4Figure6(w, exp.Table4Figure6(sc))
	}
	if sel("fig78") {
		report.Figures78(w, exp.Figures78(sc, exp.SectionVApps))
	}
	if sel("fig9") {
		report.Figure9(w, exp.Figure9(sc, []string{"lu", "radix", "ferret", "blackscholes", "canneal"}))
	}
	if sel("table5") {
		report.Table5(w, exp.Table5(sc))
	}
	if sel("comparison") {
		report.Comparison(w, exp.Comparison(sc))
	}
	if sel("energy") {
		report.Energy(w, exp.Energy(sc))
	}
	if sel("ablations") {
		report.Ablations(w, exp.Ablations(sc))
	}
	if sel("fig10", "table6") {
		f10, t6 := exp.Figure10Table6(sc)
		if sel("fig10") {
			report.Figure10(w, f10)
		}
		if sel("table6") {
			report.Table6(w, t6)
		}
	}
	wall := time.Since(start) //lint:wallclock wall-time trailer on stdout after all tables; golden comparisons stop before it
	ev := vsnoop.TotalEventsFired()
	fmt.Fprintf(w, "\ncompleted in %s — %d events (%.0f events/sec)\n",
		wall.Round(time.Millisecond), ev, float64(ev)/wall.Seconds())
	if windows, elided, _, widthSum := vsnoop.TotalSyncCounters(); windows > 0 {
		fmt.Fprintf(w, "sync: %d windows, %d barriers elided, mean window %.0f cycles (shards=%d)\n",
			windows, elided, float64(widthSum)/float64(windows), exp.Shards)
	}
}
