// Command vsnoop-serve runs the vsnoop simulation service: a long-running
// HTTP/JSON daemon that accepts single-config and sweep jobs, schedules
// them over the deterministic simulator, memoizes results in a
// content-addressed store, and survives crashes via an fsync'd job
// journal. See internal/serve for the architecture and DESIGN.md §12 for
// the failure model.
//
// Usage:
//
//	vsnoop-serve -addr :8080 -data /var/lib/vsnoop \
//	    -workers 4 -queue 64 -quota-rate 2 -quota-burst 20 \
//	    -mode auto -store-max-bytes 1073741824
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, POST /v1/jobs/{id}/cancel,
// GET /v1/results/{hash}, /healthz, /readyz, /metrics.
//
// SIGINT/SIGTERM shut down gracefully: intake stops, in-flight jobs are
// canceled and journaled, and the journal/store stay consistent for the
// next start to replay.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vsnoop"
	"vsnoop/internal/serve"
)

func main() {
	maxProcs := runtime.GOMAXPROCS(0)
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "vsnoop-data", "data directory (journal + result store)")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS/2, min 1)")
	queue := flag.Int("queue", 64, "job queue capacity (backpressure bound)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant admitted configs per second (0 = quotas off)")
	quotaBurst := flag.Float64("quota-burst", 32, "per-tenant token-bucket burst (configs)")
	shards := flag.Int("shards", -1, "event-queue shards per run: -1 = auto (planner-resolved once at startup), 0 = honor request, N = force")
	mode := flag.String("mode", "", `synchronization engine forced per run: windowed, adaptive, timewarp, or auto ("" honors each request; results are bit-identical across modes)`)
	storeMax := flag.Int64("store-max-bytes", 0, "result-store size bound; oldest unreferenced results are evicted past it (0 = unbounded)")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	maxConfigs := flag.Int("max-configs", 1024, "max configs per sweep job")
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = maxProcs / 2
		if w < 1 {
			w = 1
		}
	}
	resolvedShards := *shards
	if resolvedShards < 0 {
		// Auto: the partition planner resolves the shard count —
		// min(planned snoop domains, GOMAXPROCS) for the default geometry;
		// each run additionally clamps to its own planned domain count.
		// Resolved exactly once, here at startup, so memoization keys and
		// the vsnoop_shards gauge stay stable for the server's whole
		// lifetime even if GOMAXPROCS is changed at runtime. The store
		// hash ignores shard count, so this never affects results.
		resolvedShards = vsnoop.AutoShards(vsnoop.DefaultConfig(), maxProcs)
	}

	s, err := serve.New(serve.Options{
		DataDir:          *data,
		Workers:          w,
		QueueCap:         *queue,
		QuotaRate:        *quotaRate,
		QuotaBurst:       *quotaBurst,
		MaxBodyBytes:     *maxBody,
		MaxConfigsPerJob: *maxConfigs,
		Shards:           resolvedShards,
		Mode:             *mode,
		StoreMaxBytes:    *storeMax,
		Now:              time.Now,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsnoop-serve:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vsnoop-serve: listening on %s (data=%s workers=%d queue=%d)\n",
		*addr, *data, w, *queue)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "vsnoop-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		s.Close()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vsnoop-serve:", err)
			s.Close()
			os.Exit(1)
		}
	}
}
