package vsnoop

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// defaultHash is the pinned canonical hash of DefaultConfig. A literal
// digest in the repo is the cross-process stability contract: every
// process, machine, and Go version must encode the default config to
// exactly these bytes. If a Config change legitimately alters the
// encoding, bump the version string in Hash and re-pin.
const defaultHash = "d514039b01ff21ccc57bc7f73e401b559c1ae74582e51592d8bdb5499cdba4bc"

func TestHashDefaultPinned(t *testing.T) {
	if h := DefaultConfig().Hash(); h != defaultHash {
		t.Fatalf("DefaultConfig().Hash() = %s, want %s", h, defaultHash)
	}
}

// TestHashIgnoresExecutionMechanics: Shards, NoElision, and Mode pick
// goroutine counts and synchronization engines proven bit-identical, so
// they must not change the memoization key.
func TestHashIgnoresExecutionMechanics(t *testing.T) {
	cfg := DefaultConfig()
	base := cfg.Hash()
	cfg.Shards = 4
	cfg.NoElision = true
	for _, mode := range []string{"windowed", "adaptive", "timewarp", "auto"} {
		cfg.Mode = mode
		if h := cfg.Hash(); h != base {
			t.Fatalf("Shards/NoElision/Mode=%s changed the hash: %s vs %s", mode, h, base)
		}
	}
}

// TestHashDistinguishesSemanticFields flips every semantic field one at a
// time and requires a distinct hash each time (including nil vs zero-valued
// fault plan, and Workload vs the equivalent-length WorkloadPerVM).
func TestHashDistinguishesSemanticFields(t *testing.T) {
	muts := map[string]func(*Config){
		"cores":       func(c *Config) { c.Cores = 32 },
		"vms":         func(c *Config) { c.VMs = 2 },
		"vcpus":       func(c *Config) { c.VCPUsPerVM = 8 },
		"workload":    func(c *Config) { c.Workload = "ocean" },
		"perVM":       func(c *Config) { c.WorkloadPerVM = []string{"fft"} },
		"policy":      func(c *Config) { c.Policy = PolicyCounter },
		"content":     func(c *Config) { c.Content = ContentIntraVM },
		"threshold":   func(c *Config) { c.Threshold = 11 },
		"refs":        func(c *Config) { c.RefsPerVCPU = 100 },
		"warmup":      func(c *Config) { c.WarmupRefs = 1 },
		"migration":   func(c *Config) { c.MigrationPeriodMs = 2.5 },
		"cyclesPerMs": func(c *Config) { c.CyclesPerMs = 1000 },
		"sharing":     func(c *Config) { c.ContentSharing = true },
		"hypervisor":  func(c *Config) { c.Hypervisor = true },
		"checks":      func(c *Config) { c.Checks = true },
		"maxSteps":    func(c *Config) { c.MaxSteps = 1 },
		"seed":        func(c *Config) { c.Seed = 2 },
		"fault":       func(c *Config) { c.Fault = &FaultPlan{} },
		"faultSeed":   func(c *Config) { c.Fault = &FaultPlan{Seed: 1} },
		"faultEvent": func(c *Config) {
			c.Fault = &FaultPlan{Events: []FaultEvent{{AtCycle: 1, Kind: FaultCorruptMap}}}
		},
	}
	seen := map[string]string{DefaultConfig().Hash(): "default"}
	names := make([]string, 0, len(muts))
	for name := range muts {
		names = append(names, name)
	}
	// Deterministic order for failure messages (map iteration is fine in
	// tests; sorting keeps reruns stable).
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		cfg := DefaultConfig()
		muts[name](&cfg)
		h := cfg.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q: %s", name, prev, h)
		}
		seen[h] = name
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Workload = "no-such-workload"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown workload passed Validate")
	}
	over := DefaultConfig()
	over.VMs = 8 // 32 vCPUs on 16 cores
	if err := over.Validate(); err == nil {
		t.Fatal("overcommitted config passed Validate")
	}
}

// TestRunCtxCompletes: a background context changes nothing — the Result is
// deeply equal to Run's, Stats included.
func TestRunCtxCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1500
	cfg.WarmupRefs = 200
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxRes) {
		t.Fatal("RunCtx result differs from Run result")
	}
	// A cancelable context that never fires must not change the result
	// either (this path attaches a real Canceler to the engines).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	armed, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, armed) {
		t.Fatal("RunCtx with un-fired cancelable context differs from Run")
	}
}

// TestRunCtxCanceled cancels mid-run from another goroutine and requires a
// prompt error that errors.Is-matches context.Canceled, with no Result.
func TestRunCtxCanceled(t *testing.T) {
	cfg := DefaultConfig() // 20k refs/vCPU: far longer than the cancel latency
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, err := RunCtx(ctx, cfg)
	if res != nil {
		t.Fatal("canceled run returned a partial Result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxDeadline: an already-expired deadline refuses to start and
// reports DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	res, err := RunCtx(ctx, DefaultConfig())
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("res=%v err=%v, want nil + DeadlineExceeded", res, err)
	}
}

// TestRunCtxShardedCanceled covers the shard-parallel cancel path: a
// shardable config at Shards=4, canceled from another goroutine.
func TestRunCtxShardedCanceled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, err := RunCtx(ctx, cfg)
	if res != nil {
		t.Fatal("canceled sharded run returned a partial Result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
