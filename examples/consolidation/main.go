// Consolidation: a heterogeneous server-consolidation scenario — four
// different VMs (a web tier, a database, a JVM, and an analytics batch
// job) share one 16-core processor with content-based page sharing
// enabled. The example compares the four content-sharing snoop policies of
// Section VI.B and shows where the data for content-shared misses came
// from (the Table VI decomposition).
package main

import (
	"fmt"
	"log"

	"vsnoop"
)

func main() {
	mix := []string{"specweb", "oltp", "specjbb", "canneal"}

	fmt.Println("server consolidation — 4 heterogeneous VMs, content sharing on")
	fmt.Printf("VM mix: %v\n\n", mix)

	policies := []vsnoop.ContentPolicy{
		vsnoop.ContentBroadcast, vsnoop.ContentMemoryDirect,
		vsnoop.ContentIntraVM, vsnoop.ContentFriendVM,
	}

	var baseline float64
	fmt.Printf("%-18s %12s %14s %12s\n", "content policy", "snoops/txn", "traffic(B*hop)", "retries")
	for i, cp := range policies {
		cfg := vsnoop.DefaultConfig()
		cfg.WorkloadPerVM = mix
		cfg.Workload = ""
		cfg.ContentSharing = true
		cfg.Policy = vsnoop.PolicyBase
		cfg.Content = cp
		res, err := vsnoop.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.2f %14d %12d\n",
			cp, res.SnoopsPerTransaction, res.TrafficByteHops, res.Retries)
		if i == 0 {
			baseline = res.SnoopsPerTransaction
			st := res.Stats
			total := st.HolderMemory + st.HolderIntraVM + st.HolderFriend + st.HolderOther
			if total > 0 {
				fmt.Printf("\n  content-miss data holders (Table VI style):\n")
				fmt.Printf("    intra-VM cache  %5.1f%%\n", 100*float64(st.HolderIntraVM)/float64(total))
				fmt.Printf("    friend-VM cache %5.1f%%\n", 100*float64(st.HolderFriend)/float64(total))
				fmt.Printf("    other VM cache  %5.1f%%\n", 100*float64(st.HolderOther)/float64(total))
				fmt.Printf("    memory only     %5.1f%%\n\n", 100*float64(st.HolderMemory)/float64(total))
			}
		}
	}
	_ = baseline
	fmt.Println("\nNote: in a heterogeneous mix, VMs share far fewer identical pages")
	fmt.Println("than homogeneous ones, so the content policies matter less — exactly")
	fmt.Println("the paper's observation that content sharing is workload-dependent.")
}
