// Quickstart: run the paper's Table II machine (16 cores, 4 VMs x 4
// vCPUs) once with the TokenB broadcast baseline and once with virtual
// snooping, and print the headline numbers — the 75% snoop reduction and
// the ~60% network-traffic reduction of Section V.B.
package main

import (
	"fmt"
	"log"

	"vsnoop"
)

func main() {
	base := vsnoop.DefaultConfig()
	base.Workload = "fft"
	base.Policy = vsnoop.PolicyBroadcast

	vs := base
	vs.Policy = vsnoop.PolicyBase

	bres, err := vsnoop.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	vres, err := vsnoop.Run(vs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("virtual snooping quickstart — 16 cores, 4 pinned VMs, fft")
	fmt.Printf("%-22s %14s %14s\n", "", "tokenB", "virtual-snoop")
	fmt.Printf("%-22s %14.2f %14.2f\n", "snoops/transaction",
		bres.SnoopsPerTransaction, vres.SnoopsPerTransaction)
	fmt.Printf("%-22s %14d %14d\n", "traffic (byte-hops)",
		bres.TrafficByteHops, vres.TrafficByteHops)
	fmt.Printf("%-22s %14d %14d\n", "exec cycles",
		bres.ExecCycles, vres.ExecCycles)

	fmt.Printf("\nsnoop reduction:   %5.1f%%  (paper: 75%% with 4 VMs on 16 cores)\n",
		100*(1-vres.SnoopsPerTransaction/bres.SnoopsPerTransaction))
	fmt.Printf("traffic reduction: %5.1f%%  (paper Table IV: ~63%%)\n",
		100*(1-float64(vres.TrafficByteHops)/float64(bres.TrafficByteHops)))
	fmt.Printf("runtime:           %5.1f%% of baseline (paper Fig 6: 90.9-99.8%%)\n",
		100*float64(vres.ExecCycles)/float64(bres.ExecCycles))
}
