// Tracereplay: capture a workload's memory-reference streams to a trace
// file, then demonstrate that replaying the trace reproduces the original
// stream bit-for-bit — the trace-driven methodology Virtual-GEMS uses
// (replaying Simics traces into a timing model), available here for
// regression pinning and directed experiments.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vsnoop/internal/trace"
	"vsnoop/internal/workload"
)

func main() {
	const app = "canneal"
	const vcpus = 4
	const refs = 50000

	dir, err := os.MkdirTemp("", "vsnoop-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, app+".trc")

	// Capture: one section per vCPU.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(f)
	if err := w.Begin(vcpus); err != nil {
		log.Fatal(err)
	}
	prof := workload.MustGet(app)
	for t := 0; t < vcpus; t++ {
		g := workload.NewGenerator(prof, vcpus, t, 42)
		if err := trace.Capture(w, g, refs); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	info, _ := os.Stat(path)
	fmt.Printf("captured %d vCPUs x %d refs of %q: %s (%d bytes, %.2f B/ref)\n",
		vcpus, refs, app, filepath.Base(path), info.Size(),
		float64(info.Size())/float64(vcpus*refs))

	// Replay and verify against regeneration.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	r, err := trace.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace holds %d vCPU sections\n", r.VCPUs())

	mismatches := 0
	for t := 0; t < vcpus; t++ {
		rp, err := trace.NewReplayer(r)
		if err != nil {
			log.Fatal(err)
		}
		g := workload.NewGenerator(prof, vcpus, t, 42)
		for i := 0; i < rp.Len(); i++ {
			if rp.Next() != g.Next() {
				mismatches++
			}
		}
	}
	if mismatches != 0 {
		log.Fatalf("replay diverged on %d references", mismatches)
	}
	fmt.Println("replay verified: trace matches regeneration reference-for-reference")
	fmt.Println()
	fmt.Println("Use traces to pin a workload across calibration changes, feed")
	fmt.Println("hand-built streams to the simulator, or diff two versions' behavior.")
}
