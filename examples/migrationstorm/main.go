// Migrationstorm: stress virtual snooping with increasingly aggressive
// vCPU relocation (the Section V.C experiment, Figures 7/8). For each
// migration period the example compares the three virtual-snooping
// policies against the TokenB broadcast baseline, showing how the base
// policy collapses while the counter policy keeps filtering.
package main

import (
	"fmt"
	"log"

	"vsnoop"
)

func main() {
	const app = "ocean"
	periods := []float64{5, 2.5, 0.5, 0.1}
	policies := []vsnoop.Policy{
		vsnoop.PolicyBase, vsnoop.PolicyCounter, vsnoop.PolicyCounterThreshold,
	}

	fmt.Printf("migration storm — %s on 16 cores, 4 VMs, shuffling vCPUs\n\n", app)
	fmt.Printf("%8s | %12s %12s %18s   (normalized snoops, tokenB = 100%%)\n",
		"period", "vsnoop-base", "counter", "counter-threshold")

	run := func(pol vsnoop.Policy, period float64) *vsnoop.Result {
		cfg := vsnoop.DefaultConfig()
		cfg.Workload = app
		cfg.Policy = pol
		cfg.MigrationPeriodMs = period
		cfg.CyclesPerMs = 12_000
		cfg.RefsPerVCPU = 30000
		cfg.WarmupRefs = 3000
		res, err := vsnoop.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	for _, period := range periods {
		base := run(vsnoop.PolicyBroadcast, period)
		fmt.Printf("%6.1fms |", period)
		for _, pol := range policies {
			res := run(pol, period)
			norm := 100 * float64(res.Stats.SnoopsIssued) / float64(base.Stats.SnoopsIssued)
			width := 12
			if pol == vsnoop.PolicyCounterThreshold {
				width = 18
			}
			fmt.Printf(" %*.1f%%", width-1, norm)
		}
		fmt.Println()
	}
	fmt.Println("\nideal multicast = 25%. Paper shape: counter stays near the ideal at")
	fmt.Println("5/2.5ms and still filters ~45% at 0.1ms; base degrades toward 100%.")
}
