// Macro-benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs one experiment end-to-end (heavy: a full
// simulation sweep per iteration — Go's benchtime logic keeps N at 1) and
// reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced results alongside time/allocation costs. The
// corresponding paper values are recorded in EXPERIMENTS.md.
//
// Micro-benchmarks for the substrate primitives (cache, mesh, protocol,
// filter) live next to their packages.
package vsnoop

import (
	"testing"

	"vsnoop/internal/exp"
)

// benchScale trims the experiment scale so the full -bench=. suite stays
// tractable on one core while preserving every shape.
var benchScale = exp.Scale{
	Name:       "bench",
	RefsPinned: 3000, RefsMig: 6000, RefsContent: 3500, RefsFig1: 4000,
	SchedWorkMS: 600,
	Warmup:      5000,
	MigWarmup:   2000,
	Seeds:       1,
}

// benchApps is the reduced workload set used by the heaviest sweeps.
var benchApps = []string{"fft", "ocean", "canneal", "specjbb"}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figure1(benchScale)
		var dev float64
		for _, r := range rows {
			d := r.XenPct + r.Dom0Pct - r.PaperPct
			if d < 0 {
				d = -d
			}
			dev += d
		}
		b.ReportMetric(dev/float64(len(rows)), "meanAbsDev_pp")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figure2()
		// The 16-VM ideal point the paper quotes (>93%).
		for _, r := range rows {
			if r.VMs == 16 && r.HvRatioPct == 0 {
				b.ReportMetric(r.ReductionPct, "ideal16VM_red_pct")
			}
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f3, _ := exp.Figure3Table1(benchScale)
		var under, over float64
		for _, r := range f3 {
			under += r.NormFullUnderPct
			over += r.NormFullOverPct
		}
		n := float64(len(f3))
		b.ReportMetric(under/n, "under_full_vs_pinned_pct")
		b.ReportMetric(over/n, "over_full_vs_pinned_pct")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t1 := exp.Figure3Table1(benchScale)
		var ratio float64
		for _, r := range t1 {
			if r.OverMS > 0 {
				ratio += r.UnderMS / r.OverMS
			}
		}
		// Overcommitted systems must relocate much more often.
		b.ReportMetric(ratio/float64(len(t1)), "under_over_period_ratio")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table4Figure6(benchScale)
		var red float64
		for _, r := range rows {
			red += r.TrafficReductionPct
		}
		b.ReportMetric(red/float64(len(rows)), "traffic_red_pct") // paper: 63.68
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table4Figure6(benchScale)
		var rt float64
		for _, r := range rows {
			rt += r.NormRuntimePct
		}
		b.ReportMetric(rt/float64(len(rows)), "norm_runtime_pct") // paper: ~96.2
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figures78Periods(benchScale, benchApps, []float64{5, 2.5})
		b.ReportMetric(avgPolicy(rows, "counter"), "counter_norm_pct") // paper: ~25-30
		b.ReportMetric(avgPolicy(rows, "vsnoop-base"), "base_norm_pct")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Figures78Periods(benchScale, benchApps, []float64{0.5, 0.1})
		b.ReportMetric(avgPolicy(rows, "counter"), "counter_norm_pct")  // paper: ~40-55
		b.ReportMetric(avgPolicy(rows, "vsnoop-base"), "base_norm_pct") // paper: ~80-96
	}
}

func avgPolicy(rows []exp.Fig78Row, policy string) float64 {
	var sum float64
	n := 0
	for _, r := range rows {
		if r.Policy.String() == policy {
			sum += r.NormSnoopPct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Figure9(benchScale, []string{"fft", "ocean"})
		for _, s := range series {
			if s.N > 0 {
				// Fraction of removals completed within 10 scaled ms
				// (paper: "for most of the occurrences ... within 10ms").
				within := 0.0
				for j, x := range s.Xms {
					if x <= 10 {
						within = s.CDF[j]
					}
				}
				b.ReportMetric(100*within, "removed_within_10ms_pct_"+s.Workload)
			}
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table5(benchScale)
		var acc, miss float64
		for _, r := range rows {
			acc += r.AccessPct
			miss += r.MissPct
		}
		n := float64(len(rows))
		b.ReportMetric(acc/n, "content_access_pct") // paper: 12.51
		b.ReportMetric(miss/n, "content_miss_pct")  // paper: 19.94
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f10, _ := exp.Figure10Table6(benchScale)
		agg := map[string][]float64{}
		for _, r := range f10 {
			agg[r.Policy.String()] = append(agg[r.Policy.String()], r.NormSnoopPct)
		}
		for pol, vals := range agg {
			var s float64
			for _, v := range vals {
				s += v
			}
			b.ReportMetric(s/float64(len(vals)), pol+"_norm_pct")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t6 := exp.Figure10Table6(benchScale)
		var mem float64
		for _, r := range t6 {
			mem += r.MemoryPct
		}
		if len(t6) > 0 {
			b.ReportMetric(mem/float64(len(t6)), "memory_holder_pct") // paper: 37-53
		}
	}
}

// BenchmarkSingleRun measures the simulator's own throughput: one pinned
// fft run per iteration, useful for performance regressions of the
// simulation engine itself.
func BenchmarkSingleRun(b *testing.B) {
	benchmarkSingleRun(b, 0, false, "")
}

// BenchmarkSingleRunShards1 and BenchmarkSingleRunShards4 bracket the
// shard-parallel engine's scaling curve on the same run: K=1 is the serial
// fast path (gated in CI to stay within 5% of BenchmarkSingleRun), K=4 is
// one goroutine per snoop-domain quadrant under the free-running adaptive
// protocol. BenchmarkSingleRunShards4NoElision forces the fully-barriered
// windowed protocol on the same run, isolating what adaptive windows and
// barrier elision buy. All four produce bit-identical statistics.
func BenchmarkSingleRunShards1(b *testing.B)          { benchmarkSingleRun(b, 1, false, "") }
func BenchmarkSingleRunShards4(b *testing.B)          { benchmarkSingleRun(b, 4, false, "") }
func BenchmarkSingleRunShards4NoElision(b *testing.B) { benchmarkSingleRun(b, 4, true, "") }

// BenchmarkSingleRunTimewarpK4 runs the same pinned fft run under the
// optimistic (Time Warp) engine: checkpoint, speculate past the horizon,
// roll back on stragglers, commit at GVT. On a long-lookahead config like
// this one the conservative adaptive protocol already elides almost every
// barrier, so timewarp's checkpointing is pure overhead here — CI gates it
// at <=1.10x adaptive (the "don't pay for what you don't need" bound; the
// width controller bails out to adaptive when speculation never pays).
func BenchmarkSingleRunTimewarpK4(b *testing.B) { benchmarkSingleRun(b, 4, false, "timewarp") }

func benchmarkSingleRun(b *testing.B, shards int, noElision bool, mode string) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 2000
		cfg.WarmupRefs = 0
		cfg.Shards = shards
		cfg.NoElision = noElision
		cfg.Mode = mode
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Migration and content-sharing runs were serial-only before the graph-cut
// partitioner: migration moved vCPU ownership between quadrants and content
// sharing created cross-VM page aliases, both of which the old four-quadrant
// invariant disqualified. They now shard through cross-domain ownership
// transfer and domain-owned COW overlays, so each class gets its own scaling
// curve. The serial baseline is ForceSerial — the legacy single-queue engine
// that used to be these configs' only execution mode — while Shards=1 runs
// the partitioned engine single-shard, so the Serial/Shards1 gap prices the
// transfer pipeline itself and Shards1/Shards4 prices the parallelism. CI
// regenerates BENCH_7.json from these and gates K=4 speedup and K=1
// overhead against the committed numbers.
func BenchmarkMigrationRunSerial(b *testing.B)  { benchmarkMigrationRun(b, 0, true) }
func BenchmarkMigrationRunShards1(b *testing.B) { benchmarkMigrationRun(b, 1, false) }
func BenchmarkMigrationRunShards4(b *testing.B) { benchmarkMigrationRun(b, 4, false) }

func benchmarkMigrationRun(b *testing.B, shards int, forceSerial bool) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 2000
		cfg.WarmupRefs = 0
		cfg.MigrationPeriodMs = 2.5
		cfg.Shards = shards
		cfg.ForceSerial = forceSerial
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContentRunSerial(b *testing.B)  { benchmarkContentRun(b, 0, true) }
func BenchmarkContentRunShards4(b *testing.B) { benchmarkContentRun(b, 4, false) }

// Migration-storm runs are the optimistic engine's home turf: a 0.5ms
// relocation period collapses the cross-domain horizon, so the conservative
// protocols (windowed and adaptive alike) advance in slivers — every shard
// waits at every barrier for lookahead that never opens up. Time Warp
// speculates past the horizon and almost never has to roll back (relocations
// rarely land inside the speculated slice), so its epochs stay wide. CI
// regenerates BENCH_10.json from these three and gates timewarp >=1.3x
// adaptive on >=4-core runners; on the pinned long-lookahead run above it
// gates timewarp <=1.10x adaptive, so speculation wins where lookahead
// collapses and costs nothing measurable where it doesn't. All modes produce
// bit-identical statistics (TestTimewarpMigrationBitIdentical).
func BenchmarkStormSerial(b *testing.B)     { benchmarkStormRun(b, 0, true, "") }
func BenchmarkStormAdaptiveK4(b *testing.B) { benchmarkStormRun(b, 4, false, "adaptive") }
func BenchmarkStormTimewarpK4(b *testing.B) { benchmarkStormRun(b, 4, false, "timewarp") }

func benchmarkStormRun(b *testing.B, shards int, forceSerial bool, mode string) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 2000
		cfg.WarmupRefs = 0
		cfg.MigrationPeriodMs = 0.5
		cfg.Shards = shards
		cfg.ForceSerial = forceSerial
		cfg.Mode = mode
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkContentRun(b *testing.B, shards int, forceSerial bool) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 2000
		cfg.WarmupRefs = 0
		cfg.ContentSharing = true
		cfg.Content = ContentFriendVM
		cfg.Policy = PolicyCounter
		cfg.Shards = shards
		cfg.ForceSerial = forceSerial
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
