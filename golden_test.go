package vsnoop

import (
	"fmt"
	"reflect"
	"testing"
)

// goldenRow pins one configuration's headline results to the exact values
// the simulator produced before the performance overhaul (the zero-alloc
// event kernel, bit-vector vCPU maps, and dense link tables). The overhaul
// must not change simulated behaviour at all: any drift here is a
// determinism regression, not a tolerance question.
type goldenRow struct {
	name        string
	cfg         Config
	hash        string // canonical Config.Hash(), pinned cross-process
	execCycles  uint64
	snoopsPerTx string // %.6f
	byteHops    uint64
	l2Misses    uint64
	txns        uint64
	retries     uint64
	persistent  uint64
	relocations uint64
}

func goldenConfigs() []goldenRow {
	mig := DefaultConfig()
	mig.Workload = "fft"
	mig.Policy = PolicyCounter
	mig.MigrationPeriodMs = 2.5
	mig.RefsPerVCPU = 3000
	mig.WarmupRefs = 500
	mig.Seed = 7

	pinned := DefaultConfig()
	pinned.Workload = "ocean"
	pinned.Policy = PolicyCounterThreshold
	pinned.RefsPerVCPU = 2500
	pinned.WarmupRefs = 400
	pinned.Seed = 3

	content := DefaultConfig()
	content.Workload = "radix"
	content.Policy = PolicyBase
	content.Content = ContentIntraVM
	content.ContentSharing = true
	content.RefsPerVCPU = 2000
	content.WarmupRefs = 300
	content.Seed = 11

	faulted := DefaultConfig()
	faulted.Workload = "fft"
	faulted.Policy = PolicyCounterFlush
	faulted.MigrationPeriodMs = 0.5
	faulted.RefsPerVCPU = 2000
	faulted.WarmupRefs = 300
	faulted.Seed = 5
	faulted.Fault = &FaultPlan{Seed: 9, DropPct: 1, DupPct: 0.5, DelayPct: 1}

	// ocean-threshold-pinned is the one shardable configuration here; its
	// values were regenerated when shardable configs moved to the
	// domain-partitioned engine (four snoop-domain scheduling domains and
	// partitioned network delivery, independent of Config.Shards). The
	// non-shardable rows (migration, content sharing, scheduled faults) pin
	// the legacy engine and kept their pre-overhaul values.
	return []goldenRow{
		{"fft-counter-mig", mig,
			"66542c6275f872efe9b274d7183cd68bd6467bb541ca896ab74a4d4c2b9b49ed",
			278331, "4.197568", 5800672, 14886, 14886, 0, 0, 2},
		{"ocean-threshold-pinned", pinned,
			"00ee7e2a6c67fe59ce5ef08cc7c983805430b47ebdab425b3329ae15043adead",
			447681, "4.000000", 9986704, 27981, 27981, 0, 0, 0},
		{"radix-base-content", content,
			"7dc01c8c9856f330abb4ef0f8c9c60f3f615fb9568828eb7d90a5b61a0d70673",
			315169, "4.000000", 6763520, 19106, 19106, 0, 0, 0},
		{"fft-flush-fault", faulted,
			"b0fbee7cced2e37b1e7b0bbc3f29d0e6b1a9c3ede7ed65ab6c8f02a5264791cf",
			232303, "5.594438", 5846832, 12908, 12908, 303, 0, 10},
	}
}

// TestGoldenResults asserts bit-identical results against the pre-overhaul
// simulator across the policy space: a migrating counter run, a pinned
// counter-threshold run, a content-sharing run, and a faulted flush run.
func TestGoldenResults(t *testing.T) {
	for _, g := range goldenConfigs() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecCycles != g.execCycles {
				t.Errorf("ExecCycles = %d, want %d", res.ExecCycles, g.execCycles)
			}
			if s := fmt.Sprintf("%.6f", res.SnoopsPerTransaction); s != g.snoopsPerTx {
				t.Errorf("SnoopsPerTransaction = %s, want %s", s, g.snoopsPerTx)
			}
			if res.TrafficByteHops != g.byteHops {
				t.Errorf("TrafficByteHops = %d, want %d", res.TrafficByteHops, g.byteHops)
			}
			if res.L2Misses != g.l2Misses {
				t.Errorf("L2Misses = %d, want %d", res.L2Misses, g.l2Misses)
			}
			if res.Transactions != g.txns {
				t.Errorf("Transactions = %d, want %d", res.Transactions, g.txns)
			}
			if res.Retries != g.retries {
				t.Errorf("Retries = %d, want %d", res.Retries, g.retries)
			}
			if res.Persistent != g.persistent {
				t.Errorf("Persistent = %d, want %d", res.Persistent, g.persistent)
			}
			if res.Relocations != g.relocations {
				t.Errorf("Relocations = %d, want %d", res.Relocations, g.relocations)
			}
		})
	}
}

// TestGoldenHashes pins each golden row's canonical Config.Hash to a
// literal digest. Because the digests are string constants committed to the
// repo, this doubles as the cross-process stability test: any process, any
// machine, any Go version must encode these configs to the same bytes.
func TestGoldenHashes(t *testing.T) {
	for _, g := range goldenConfigs() {
		if h := g.cfg.Hash(); h != g.hash {
			t.Errorf("%s: Hash() = %s, want %s", g.name, h, g.hash)
		}
	}
}

// TestRunTwiceIdentical runs every golden configuration twice and requires
// the full Result records (including the low-level Stats) to be deeply
// equal: a run must be a pure function of its Config.
func TestRunTwiceIdentical(t *testing.T) {
	for _, g := range goldenConfigs() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			a, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two runs of the same config diverged:\nfirst:  %+v\nsecond: %+v", a, b)
			}
		})
	}
}
