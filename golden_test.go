package vsnoop

import (
	"fmt"
	"reflect"
	"testing"
)

// goldenRow pins one configuration's headline results to the exact values
// the simulator produced before the performance overhaul (the zero-alloc
// event kernel, bit-vector vCPU maps, and dense link tables). The overhaul
// must not change simulated behaviour at all: any drift here is a
// determinism regression, not a tolerance question.
type goldenRow struct {
	name        string
	cfg         Config
	hash        string // canonical Config.Hash(), pinned cross-process
	execCycles  uint64
	snoopsPerTx string // %.6f
	byteHops    uint64
	l2Misses    uint64
	txns        uint64
	retries     uint64
	persistent  uint64
	relocations uint64
}

func goldenConfigs() []goldenRow {
	mig := DefaultConfig()
	mig.Workload = "fft"
	mig.Policy = PolicyCounter
	mig.MigrationPeriodMs = 2.5
	mig.RefsPerVCPU = 3000
	mig.WarmupRefs = 500
	mig.Seed = 7

	pinned := DefaultConfig()
	pinned.Workload = "ocean"
	pinned.Policy = PolicyCounterThreshold
	pinned.RefsPerVCPU = 2500
	pinned.WarmupRefs = 400
	pinned.Seed = 3

	content := DefaultConfig()
	content.Workload = "radix"
	content.Policy = PolicyBase
	content.Content = ContentIntraVM
	content.ContentSharing = true
	content.RefsPerVCPU = 2000
	content.WarmupRefs = 300
	content.Seed = 11

	faulted := DefaultConfig()
	faulted.Workload = "fft"
	faulted.Policy = PolicyCounterFlush
	faulted.MigrationPeriodMs = 0.5
	faulted.RefsPerVCPU = 2000
	faulted.WarmupRefs = 300
	faulted.Seed = 5
	faulted.Fault = &FaultPlan{Seed: 9, DropPct: 1, DupPct: 0.5, DelayPct: 1}

	// Every row now runs on the domain-partitioned engine (the graph-cut
	// planner covers all four). ocean-threshold-pinned has carried the same
	// values since shardable configs first moved to partitioned execution —
	// the planner reproduces its quadrant cut exactly, so it pins engine
	// continuity across the partitioner generalization. The migration,
	// content-sharing, and faulted rows were regenerated when those classes
	// moved from the legacy serial engine to partitioned semantics (ordered
	// cross-shard relocation transactions, per-domain COW overlays,
	// dom0-routed fault events); their new values are the bit-identical
	// fixed point for every shard count.
	return []goldenRow{
		{"fft-counter-mig", mig,
			"647cc876f8f8b2b1f7610e3e822ddc541829a125405bb4ed4a421bd26bb655aa",
			269816, "4.180799", 5802736, 14989, 14989, 1, 0, 2},
		{"ocean-threshold-pinned", pinned,
			"b62022292429cbfdbfaa6b3a8628f66fcc200bff0b1a679a8b4290a99c2723a2",
			447681, "4.000000", 9986704, 27981, 27981, 0, 0, 0},
		{"radix-base-content", content,
			"feef856155517173d9b4189a8291a43865395a4cf7062a2ac976d480f5d0de20",
			311646, "4.000000", 6861696, 19192, 19192, 0, 0, 0},
		{"fft-flush-fault", faulted,
			"9d2cbec7e45c98845ce56eab2a08bfb445ee51cd7a74239808e5a3097e5c3656",
			224520, "5.519391", 5767696, 12944, 12944, 279, 0, 10},
	}
}

// TestGoldenResults asserts bit-identical results against the pre-overhaul
// simulator across the policy space: a migrating counter run, a pinned
// counter-threshold run, a content-sharing run, and a faulted flush run.
func TestGoldenResults(t *testing.T) {
	for _, g := range goldenConfigs() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecCycles != g.execCycles {
				t.Errorf("ExecCycles = %d, want %d", res.ExecCycles, g.execCycles)
			}
			if s := fmt.Sprintf("%.6f", res.SnoopsPerTransaction); s != g.snoopsPerTx {
				t.Errorf("SnoopsPerTransaction = %s, want %s", s, g.snoopsPerTx)
			}
			if res.TrafficByteHops != g.byteHops {
				t.Errorf("TrafficByteHops = %d, want %d", res.TrafficByteHops, g.byteHops)
			}
			if res.L2Misses != g.l2Misses {
				t.Errorf("L2Misses = %d, want %d", res.L2Misses, g.l2Misses)
			}
			if res.Transactions != g.txns {
				t.Errorf("Transactions = %d, want %d", res.Transactions, g.txns)
			}
			if res.Retries != g.retries {
				t.Errorf("Retries = %d, want %d", res.Retries, g.retries)
			}
			if res.Persistent != g.persistent {
				t.Errorf("Persistent = %d, want %d", res.Persistent, g.persistent)
			}
			if res.Relocations != g.relocations {
				t.Errorf("Relocations = %d, want %d", res.Relocations, g.relocations)
			}
		})
	}
}

// TestGoldenHashes pins each golden row's canonical Config.Hash to a
// literal digest. Because the digests are string constants committed to the
// repo, this doubles as the cross-process stability test: any process, any
// machine, any Go version must encode these configs to the same bytes.
func TestGoldenHashes(t *testing.T) {
	for _, g := range goldenConfigs() {
		if h := g.cfg.Hash(); h != g.hash {
			t.Errorf("%s: Hash() = %s, want %s", g.name, h, g.hash)
		}
	}
}

// TestRunTwiceIdentical runs every golden configuration twice and requires
// the full Result records (including the low-level Stats) to be deeply
// equal: a run must be a pure function of its Config.
func TestRunTwiceIdentical(t *testing.T) {
	for _, g := range goldenConfigs() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			a, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("two runs of the same config diverged:\nfirst:  %+v\nsecond: %+v", a, b)
			}
		})
	}
}
